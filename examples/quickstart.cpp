// Quickstart: compile a SCOPE-like script through the advisor API, inspect
// the plan / rule signature / estimated cost, execute it on the simulated
// cluster, then steer the optimizer by uploading a hint — the same flow a
// production tenant uses against the always-on AdvisorService.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>
#include <iostream>

#include "service/advisor_service.h"

int main() {
  using namespace qo;  // NOLINT

  // 1. Describe the inputs. The catalog carries both ground-truth statistics
  //    (used by the execution simulator) and the optimizer-visible estimates
  //    (which may be stale — here the fact table is underestimated 2x).
  scope::Catalog catalog;
  scope::TableStats facts;
  facts.true_rows = 2.0e8;
  facts.est_rows = 1.0e8;  // stale estimate
  facts.avg_row_bytes = 96;
  facts.columns["user_id"] = {5.0e5, 4.0e5};
  facts.columns["event"] = {40, 40};
  facts.columns["amount"] = {1.0e6, 1.0e6};
  catalog.RegisterTable("store://logs/events", facts);

  scope::TableStats users;
  users.true_rows = 3.0e6;
  users.est_rows = 3.2e6;
  users.avg_row_bytes = 64;
  users.columns["id"] = {3.0e6, 3.2e6};
  users.columns["country"] = {200, 190};
  catalog.RegisterTable("store://dims/users", users);

  // 2. A job: two extracts, a filter (with its ground-truth selectivity
  //    annotated after '@'), an FK join, and a grouped aggregation.
  workload::JobInstance job;
  job.job_id = "quickstart_job";
  job.template_name = "Quickstart";
  job.catalog = catalog;
  job.run_seed = 42;
  job.script = R"(
    events = EXTRACT user_id:long, event:string, amount:double
             FROM "store://logs/events";
    users = EXTRACT id:long, country:string FROM "store://dims/users";
    purchases = SELECT user_id, event, amount FROM events
                WHERE event == "purchase" @ 0.03;
    enriched = SELECT user_id, country, amount FROM purchases
               JOIN users ON user_id == id @ 1.0;
    by_country = SELECT country, SUM(amount) AS revenue, COUNT(*) AS n
                 FROM enriched GROUP BY country;
    OUTPUT by_country TO "store://out/revenue";
  )";

  // 3. Stand up the advisor service (one env snapshot; Defaults() reads
  //    nothing) and open a tenant — the tenant owns its engine, compile
  //    cache, learner and hint store.
  service::AdvisorService advisor(service::AdvisorOptions::FromEnv());
  auto session = advisor.OpenTenant("quickstart");
  if (!session.ok()) {
    std::cerr << "open tenant failed: " << session.status() << "\n";
    return 1;
  }

  // 4. Compile + run under the default rule configuration. Compile goes
  //    through the API (hint-aware; no hints yet), execution through the
  //    tenant's engine.
  auto base = session->Compile(job);
  if (!base.ok()) {
    std::cerr << "compile failed: " << base.status() << "\n";
    return 1;
  }
  exec::JobMetrics base_metrics =
      session->engine().Execute(job, *base->compilation, /*run_salt=*/0);
  std::printf("--- default plan (est cost %.3f, sis v%d) ---\n%s\n",
              base->compilation->est_cost, base->sis_version,
              base->compilation->plan.ToString().c_str());
  std::printf("rule signature bits: ");
  for (int bit : base->compilation->signature.Positions()) {
    std::printf("%d ", bit);
  }
  std::printf("\nmetrics: %s\n\n", base_metrics.ToString().c_str());

  // 5. Steer: upload a hint flipping a single rule (enable the
  //    estimate-sensitive aggressive broadcast join) for this template.
  //    The upload republishes the tenant snapshot, so the next compile of
  //    any "Quickstart" job — from any thread — picks the hint up.
  sis::HintFile hints;
  hints.day = 0;
  hints.entries.push_back({.template_name = "Quickstart",
                           .rule_id = opt::rules::kBroadcastJoinAggressive,
                           .enable = true});
  auto upload = session->UploadHints(hints);
  if (!upload.ok()) {
    std::cerr << "hint upload failed: " << upload.status() << "\n";
    return 1;
  }
  std::printf("uploaded hint file: sis v%d, %zu active hint(s), snapshot "
              "seq %llu\n\n",
              upload->version, upload->active_hints,
              static_cast<unsigned long long>(upload->snapshot_sequence));

  auto steered = session->Compile(job);
  if (!steered.ok()) {
    std::cerr << "steered compile failed: " << steered.status() << "\n";
    return 1;
  }
  exec::JobMetrics steered_metrics =
      session->engine().Execute(job, *steered->compilation, /*run_salt=*/0);
  std::printf("--- steered plan (est cost %.3f, hint rule %d applied) ---\n%s\n",
              steered->compilation->est_cost, steered->rule_id,
              steered->compilation->plan.ToString().c_str());
  std::printf("metrics: %s\n\n", steered_metrics.ToString().c_str());
  std::printf("PNhours delta: %+.1f%%   latency delta: %+.1f%%   "
              "vertices delta: %+.1f%%\n",
              100.0 * exec::RelativeDelta(steered_metrics.pn_hours,
                                          base_metrics.pn_hours),
              100.0 * exec::RelativeDelta(steered_metrics.latency_sec,
                                          base_metrics.latency_sec),
              100.0 * exec::RelativeDelta(
                          static_cast<double>(steered_metrics.vertices),
                          static_cast<double>(base_metrics.vertices)));
  return 0;
}

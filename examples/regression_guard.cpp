// Regression guard: demonstrates why estimated cost alone is not a safe
// deployment signal (paper Sec. 5.2) and how the flighting + validation
// model catches regressions before they reach production (Secs. 4.3, 5.3).
//
//   ./build/examples/regression_guard
#include <cstdio>

#include "core/feature_gen.h"
#include "core/recommend.h"
#include "core/validation.h"
#include "experiments/experiments.h"
#include "flighting/flighting.h"

int main() {
  using namespace qo;  // NOLINT

  experiments::ExperimentEnv env(
      {.num_templates = 50, .jobs_per_day = 90, .seed = 99});
  engine::ScopeEngine const& engine = env.engine();
  flight::FlightingService flighting(&engine, {.seed = 5});
  bandit::PersonalizerService personalizer({.seed = 3});
  advisor::Recommender recommender(&engine, &personalizer, {});

  // Gather flighting telemetry for a few days and train the validation
  // model: PNhours delta ~ (DataRead delta, DataWritten delta).
  std::vector<advisor::ValidationSample> samples;
  advisor::ValidationModel model({.accept_threshold = -0.10,
                                  .min_training_samples = 20});
  Rng rng(17);
  auto process_day = [&](int day, bool train) {
    telemetry::WorkloadView view = env.BuildDayView(day);
    telemetry::WorkloadView recurring;
    recurring.day = day;
    for (auto& row : view.rows) {
      if (row.recurring) recurring.rows.push_back(row);
    }
    auto features = advisor::GenerateFeatures(engine, recurring);
    int accepted = 0, rejected = 0, would_regress = 0, caught = 0;
    for (const auto& f : features) {
      for (int bit : f.span.Positions()) {
        auto rec = recommender.EvaluateFlip(f, bit);
        if (rec.outcome != advisor::RecompileOutcome::kLowerCost) continue;
        flight::FlightRequest request;
        request.job = rec.instance;
        request.candidate = rec.ToConfig();
        auto flight = flighting.FlightOne(request, rng.Next());
        if (!flight.ok() ||
            flight->outcome != flight::FlightOutcome::kSuccess) {
          continue;
        }
        // The "future occurrence" outcome used to score the decision.
        auto future = flighting.FlightOne(request, rng.Next());
        if (!future.ok() ||
            future->outcome != flight::FlightOutcome::kSuccess) {
          continue;
        }
        if (train) {
          samples.push_back(
              advisor::MakeSample(*flight, future->pn_hours_delta));
          continue;
        }
        bool accept = model.Accept(*flight);
        bool regresses = future->pn_hours_delta > 0.0;
        accepted += accept;
        rejected += !accept;
        would_regress += regresses;
        caught += (!accept && regresses);
      }
    }
    if (!train) {
      std::printf("day %d: %d est-cost-improving flips flighted\n", day,
                  accepted + rejected);
      std::printf("  without validation, deployed: %d (of which %d regress "
                  "PNhours!)\n",
                  accepted + rejected, would_regress);
      std::printf("  with validation, deployed: %d; regressions caught: "
                  "%d/%d\n",
                  accepted, caught, would_regress);
    }
  };

  for (int day = 0; day < 6; ++day) process_day(day, /*train=*/true);
  auto status = model.Train(samples);
  if (!status.ok()) {
    std::printf("validation model training failed: %s\n",
                status.ToString().c_str());
    return 1;
  }
  std::printf("validation model trained on %zu flight samples\n",
              samples.size());
  std::printf("  pn_delta = %.3f*read_delta %+.3f*written_delta %+.4f\n\n",
              model.regression().weights()[0],
              model.regression().weights()[1],
              model.regression().intercept());
  process_day(6, /*train=*/false);
  return 0;
}

// Figure 7: DataRead delta vs PNhours delta with the paper's polynomial
// trend line. Paper: reading less data in the A/B run predicts a PNhours
// reduction.
#include <cstdio>

#include "bench_util.h"
#include "experiments/experiments.h"

int main() {
  qo::experiments::ExperimentEnv env;
  auto result = qo::experiments::RunIoVsPn(
      env, qo::experiments::IoMetric::kDataRead);
  std::printf("== Figure 7: DataRead delta vs PNhours delta ==\n");
  qo::benchutil::PrintScatterDeciles("DataRead delta", "PNhours delta",
                                     result.io_vs_pn);
  std::printf("jobs: %zu\n", result.io_vs_pn.size());
  std::printf("trend: pn_delta = %.3f * read_delta %+.4f  (r2=%.3f)\n",
              result.trend.slope, result.trend.intercept, result.trend.r2);
  std::printf("correlation: %.3f  (paper: clear positive trend)\n",
              result.correlation);
  return 0;
}

// Shared helpers for the experiment bench binaries.
#ifndef QO_BENCH_BENCH_UTIL_H_
#define QO_BENCH_BENCH_UTIL_H_

#include <algorithm>
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "common/stats.h"
#include "common/table_printer.h"

namespace qo::benchutil {

/// Prints a scatter series as decile rows (x-sorted), the way the paper's
/// figures read left-to-right.
inline void PrintScatterDeciles(const std::string& x_name,
                                const std::string& y_name,
                                std::vector<std::pair<double, double>> points) {
  if (points.empty()) {
    std::cout << "(no points)\n";
    return;
  }
  std::sort(points.begin(), points.end());
  TablePrinter table({"decile", x_name + " (mid)", y_name + " (mean)",
                      y_name + " (min)", y_name + " (max)", "n"});
  size_t n = points.size();
  for (int d = 0; d < 10; ++d) {
    size_t lo = n * static_cast<size_t>(d) / 10;
    size_t hi = n * static_cast<size_t>(d + 1) / 10;
    if (hi <= lo) continue;
    RunningStats ys;
    RunningStats xs;
    for (size_t i = lo; i < hi; ++i) {
      xs.Add(points[i].first);
      ys.Add(points[i].second);
    }
    table.AddRow({std::to_string(d + 1), TablePrinter::Num(xs.mean(), 4),
                  TablePrinter::Num(ys.mean(), 4),
                  TablePrinter::Num(ys.min(), 4),
                  TablePrinter::Num(ys.max(), 4),
                  std::to_string(hi - lo)});
  }
  table.Print(std::cout);
}

/// Prints a sorted per-job delta series the way the drill-down figures
/// (10/11/12) do: jobs ordered by delta, with the key landmarks.
inline void PrintDeltaSeries(const std::string& metric,
                             const std::vector<double>& sorted_deltas) {
  if (sorted_deltas.empty()) {
    std::cout << "(no jobs)\n";
    return;
  }
  TablePrinter table({"job rank", metric + " delta"});
  size_t n = sorted_deltas.size();
  for (size_t i = 0; i < n; ++i) {
    // Print every job for small sets, else a 20-point sweep.
    if (n <= 24 || i % std::max<size_t>(1, n / 20) == 0 || i == n - 1) {
      table.AddRow({std::to_string(i + 1),
                    TablePrinter::Pct(sorted_deltas[i], 1)});
    }
  }
  table.Print(std::cout);
  size_t improved = 0;
  for (double d : sorted_deltas) {
    if (d < 0.0) ++improved;
  }
  std::printf("jobs=%zu improved=%.0f%% best=%.1f%% worst=%+.1f%%\n", n,
              100.0 * static_cast<double>(improved) / static_cast<double>(n),
              100.0 * sorted_deltas.front(), 100.0 * sorted_deltas.back());
}

}  // namespace qo::benchutil

#endif  // QO_BENCH_BENCH_UTIL_H_

// Figure 10: per-job PNhours delta for the hint-matched jobs, sorted.
// Paper: >80% of jobs improve; best about -50%, worst regression +15%.
#include <cstdio>

#include "bench_util.h"
#include "experiments/experiments.h"

int main() {
  qo::experiments::ExperimentEnv env;
  auto result = qo::experiments::RunAggregateImpact(env);
  std::printf("== Figure 10: PNhours delta drill-down ==\n");
  qo::benchutil::PrintDeltaSeries("PNhours", result.pn_deltas);
  std::printf("(paper: >80%% improve, best ~-50%%, worst ~+15%%)\n");
  return 0;
}

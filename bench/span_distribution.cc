// Sec. 3.2: the action space must stay tractable — "Empirically, S is on
// average 10 but with a long tail distribution, so having actions scale
// linearly with S ensures tractability". This bench reports the span-size
// distribution of the simulated workload plus the share of jobs with
// non-empty spans (~66% in the paper, Sec. 5.6).
#include <cstdio>

#include "common/stats.h"
#include "core/span.h"
#include "experiments/experiments.h"

int main() {
  using namespace qo;  // NOLINT
  experiments::ExperimentEnv env;
  std::vector<double> sizes;
  size_t empty = 0, total = 0, failures = 0;
  RunningStats iterations;
  for (int day = 0; day < 3; ++day) {
    for (const auto& job : env.driver().DayJobs(day)) {
      auto span = advisor::ComputeJobSpan(env.engine(), job);
      ++total;
      if (!span.ok()) {
        ++failures;
        continue;
      }
      iterations.Add(span->iterations);
      if (span->span.None()) {
        ++empty;
      } else {
        sizes.push_back(span->span.Count());
      }
    }
  }
  std::printf("== Job span distribution ==\n");
  std::printf("jobs: %zu, empty span: %zu (%.0f%%), default-compile "
              "failures: %zu\n",
              total, empty, 100.0 * empty / total, failures);
  std::printf("non-empty spans: %zu of %zu (%.0f%%; paper: ~66%%)\n",
              sizes.size(), total, 100.0 * sizes.size() / total);
  std::printf("span size: mean=%.1f p50=%.0f p90=%.0f p99=%.0f max=%.0f "
              "(paper: mean ~10, long tail)\n",
              Mean(sizes), Percentile(sizes, 50), Percentile(sizes, 90),
              Percentile(sizes, 99), Percentile(sizes, 100));
  std::printf("fix-point iterations per span: mean=%.1f max=%.0f\n",
              iterations.mean(), iterations.max());
  // Action-set size is 1 + S (Sec. 3.2).
  std::printf("average action-set size (1 + S): %.1f\n", 1.0 + Mean(sizes));
  return 0;
}

// Figure 8: DataWritten delta vs PNhours delta with the polynomial trend
// line. Paper: writing less data also predicts PNhours reduction (weaker
// than DataRead but the same direction).
#include <cstdio>

#include "bench_util.h"
#include "experiments/experiments.h"

int main() {
  qo::experiments::ExperimentEnv env;
  auto result = qo::experiments::RunIoVsPn(
      env, qo::experiments::IoMetric::kDataWritten);
  std::printf("== Figure 8: DataWritten delta vs PNhours delta ==\n");
  qo::benchutil::PrintScatterDeciles("DataWritten delta", "PNhours delta",
                                     result.io_vs_pn);
  std::printf("jobs: %zu\n", result.io_vs_pn.size());
  std::printf("trend: pn_delta = %.3f * written_delta %+.4f  (r2=%.3f)\n",
              result.trend.slope, result.trend.intercept, result.trend.r2);
  std::printf("correlation: %.3f  (paper: positive trend)\n",
              result.correlation);
  return 0;
}

// Figure 6: estimated-cost delta vs latency delta for rule flips with lower
// estimated costs, over ~5 days of jobs. Paper: no real correlation; over
// 40% of the jobs with large estimated-cost improvements regress in latency.
#include <cstdio>

#include "bench_util.h"
#include "experiments/experiments.h"

int main() {
  qo::experiments::ExperimentEnv env;
  auto result = qo::experiments::RunCostVsLatency(env, /*days=*/5);
  std::printf("== Figure 6: estimated cost delta vs latency delta ==\n");
  qo::benchutil::PrintScatterDeciles("est cost delta", "latency delta",
                                     result.cost_vs_latency);
  std::printf("jobs: %zu\n", result.cost_vs_latency.size());
  std::printf("correlation(cost delta, latency delta): %.3f  "
              "(paper: no real correlation)\n",
              result.correlation);
  std::printf(
      "cost-improving jobs with latency regression: %.1f%%  (paper: >40%%)\n",
      100.0 * result.improved_cost_latency_regress_fraction);
  return 0;
}

// Sec. 6 ("Regressions" / "Do not reinvent the wheel"): live experimentation
// is expensive, so QO-Advisor relies on counter-factual evaluation over the
// logged exploration data to tune the policy offline. This bench trains the
// bandit from the pipeline's uniform logging arm and reports the IPS
// estimate of the learned greedy policy against the logged baseline —
// without executing a single extra job.
#include <cstdio>

#include "core/feature_gen.h"
#include "core/recommend.h"
#include "experiments/experiments.h"

int main() {
  using namespace qo;  // NOLINT
  experiments::ExperimentEnv env;
  bandit::PersonalizerService personalizer(
      {.epsilon = 0.1, .seed = 2022, .retrain_interval = 256});
  advisor::RecommenderConfig config;
  config.uniform_probes_per_job = 3;
  advisor::Recommender recommender(&env.engine(), &personalizer, config);

  std::printf("== Counterfactual (IPS) evaluation of the learned policy ==\n");
  std::printf("%4s %8s %16s %18s\n", "day", "events", "logged avg reward",
              "policy IPS estimate");
  for (int day = 0; day < 8; ++day) {
    telemetry::WorkloadView view = env.BuildDayView(day);
    telemetry::WorkloadView recurring;
    recurring.day = day;
    for (auto& row : view.rows) {
      if (row.recurring) recurring.rows.push_back(row);
    }
    auto features = advisor::GenerateFeatures(env.engine(), recurring);
    recommender.RecommendDay(features, day);
    personalizer.Retrain();
    auto eval = personalizer.EvaluateOffline();
    if (!eval.ok()) continue;
    std::printf("%4d %8zu %16.4f %18.4f\n", day, eval->events,
                eval->logged_average_reward, eval->policy_ips_estimate);
  }
  auto final_eval = personalizer.EvaluateOffline();
  if (final_eval.ok()) {
    std::printf(
        "\nlearned policy vs uniform logging baseline: %+.1f%% reward "
        "(reward = clipped default/new estimated-cost ratio; 1.0 = no-op)\n",
        100.0 * (final_eval->policy_ips_estimate /
                     final_eval->logged_average_reward -
                 1.0));
  }
  std::printf("(paper: counter-factual evaluation over past telemetry tunes "
              "the model without expensive live experiments)\n");
  return 0;
}

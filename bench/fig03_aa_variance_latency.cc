// Figure 3: A/A latency variance over 10 runs per job. Paper: more than 90%
// of jobs exceed the 5% variance line, a few exceed 100%.
#include <cstdio>

#include "bench_util.h"
#include "experiments/experiments.h"

int main() {
  qo::experiments::ExperimentEnv env;
  auto result =
      qo::experiments::RunAAVariance(env, qo::experiments::Metric::kLatency);
  std::printf("== Figure 3: A/A variance of latency (10 runs/job) ==\n");
  qo::benchutil::PrintScatterDeciles("normalized execution time",
                                     "latency CV", result.time_vs_cv);
  double max_cv = 0;
  for (auto& [t, cv] : result.time_vs_cv) max_cv = std::max(max_cv, cv);
  std::printf("jobs above 5%% variance: %.1f%%  (paper: >90%%)\n",
              100.0 * result.fraction_above_5pct);
  std::printf("max observed variance: %.0f%%  (paper: some jobs >100%%)\n",
              100.0 * max_cv);
  return 0;
}

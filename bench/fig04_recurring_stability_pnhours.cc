// Figure 4: recurring job stability for PNhours. Paper: relying on week0
// PNhours savings leads to >40% regressions in week1.
#include <cstdio>

#include "bench_util.h"
#include "experiments/experiments.h"

int main() {
  qo::experiments::ExperimentEnv env;
  auto result = qo::experiments::RunRecurringStability(
      env, qo::experiments::Metric::kPnHours);
  std::printf("== Figure 4: recurring job stability (PNhours) ==\n");
  qo::benchutil::PrintScatterDeciles("week0 PNhours delta",
                                     "week1 PNhours delta",
                                     result.week0_week1);
  std::printf(
      "week0-improving jobs that regress in week1: %.1f%%  (paper: >40%%)\n",
      100.0 * result.regress_fraction);
  return 0;
}

// Microbenchmarks (google-benchmark) for the hot paths of the pipeline:
// compilation/optimization throughput, span computation, bandit ranking,
// and the bitvector primitives everything rests on.
#include <benchmark/benchmark.h>

#include <memory>

#include "bandit/cb_model.h"
#include "bandit/personalizer.h"
#include "common/bitvector.h"
#include "common/kernels/kernels.h"
#include "core/feature_gen.h"
#include "core/span.h"
#include "engine/engine.h"
#include "flighting/flighting.h"
#include "runtime/runtime.h"
#include "telemetry/workload_view.h"
#include "workload/workload.h"

namespace {

using namespace qo;  // NOLINT

const workload::WorkloadDriver& Driver() {
  static const auto* driver = new workload::WorkloadDriver(
      {.num_templates = 20, .jobs_per_day = 30, .seed = 99});
  return *driver;
}

const std::vector<workload::JobInstance>& Jobs() {
  static const auto* jobs =
      new std::vector<workload::JobInstance>(Driver().DayJobs(0));
  return *jobs;
}

void BM_CompileDefaultConfig(benchmark::State& state) {
  engine::ScopeEngine engine;
  size_t i = 0;
  for (auto _ : state) {
    auto out =
        engine.Compile(Jobs()[i % Jobs().size()], opt::RuleConfig::Default());
    benchmark::DoNotOptimize(out);
    ++i;
  }
}
BENCHMARK(BM_CompileDefaultConfig);

void BM_CompileWithFlip(benchmark::State& state) {
  engine::ScopeEngine engine;
  auto config =
      opt::RuleConfig::DefaultWithFlip(opt::rules::kEagerAggregationLeft);
  size_t i = 0;
  for (auto _ : state) {
    auto out = engine.Compile(Jobs()[i % Jobs().size()], config);
    benchmark::DoNotOptimize(out);
    ++i;
  }
}
BENCHMARK(BM_CompileWithFlip);

void BM_ExecuteSimulation(benchmark::State& state) {
  engine::ScopeEngine engine;
  auto compiled = engine.Compile(Jobs()[0], opt::RuleConfig::Default());
  uint64_t salt = 0;
  for (auto _ : state) {
    auto m = engine.Execute(Jobs()[0], compiled->plan, salt++);
    benchmark::DoNotOptimize(m);
  }
}
BENCHMARK(BM_ExecuteSimulation);

// --- Prepared execution profiles (src/exec/): the A/A amortization story.
// Unprepared re-derives the stage decomposition per run; prepared pays it
// once in Prepare and keeps only the stochastic draws per run.

void BM_PrepareProfile(benchmark::State& state) {
  engine::ScopeEngine engine;
  auto compiled = engine.Compile(Jobs()[0], opt::RuleConfig::Default());
  exec::ClusterSimulator sim;
  for (auto _ : state) {
    auto profile = sim.Prepare(compiled->plan, Jobs()[0].catalog);
    benchmark::DoNotOptimize(profile);
  }
}
BENCHMARK(BM_PrepareProfile);

void BM_ExecuteUnprepared(benchmark::State& state) {
  engine::ScopeEngine engine;
  auto compiled = engine.Compile(Jobs()[0], opt::RuleConfig::Default());
  exec::ClusterSimulator sim;
  uint64_t seed = 0;
  for (auto _ : state) {
    auto m = sim.Execute(compiled->plan, Jobs()[0].catalog, seed++);
    benchmark::DoNotOptimize(m);
  }
}
BENCHMARK(BM_ExecuteUnprepared);

void BM_ExecutePrepared(benchmark::State& state) {
  engine::ScopeEngine engine;
  auto compiled = engine.Compile(Jobs()[0], opt::RuleConfig::Default());
  exec::ClusterSimulator sim;
  exec::ExecutionProfile profile =
      sim.Prepare(compiled->plan, Jobs()[0].catalog);
  uint64_t seed = 0;
  for (auto _ : state) {
    auto m = sim.Execute(profile, seed++);
    benchmark::DoNotOptimize(m);
  }
}
BENCHMARK(BM_ExecutePrepared);

// --- Interned symbol table + cross-config memo (src/common/, src/optimizer/):
// the compile hot path does integer array reads where it used to probe
// unordered_map<std::string>, and the per-job memo serves config flips of
// unconsulted rules without re-running the optimizer at all.

void BM_CatalogLookupInterned(benchmark::State& state) {
  // A catalog shaped like a generated job's: a wide fact table plus dims.
  scope::Catalog catalog;
  std::vector<std::pair<Symbol, Symbol>> keys;
  for (int t = 0; t < 4; ++t) {
    std::string path = "tbl";
    path += std::to_string(t);
    scope::TableStats stats;
    stats.true_rows = 1e7;
    stats.est_rows = 1.2e7;
    for (int c = 0; c < 12; ++c) {
      std::string col = "col";
      col += std::to_string(c);
      stats.columns[col] = {1e4, 1.1e4};
      // Intern once up front — the optimizer carries these ids in its plan
      // structures, so steady-state lookups never touch the strings.
      keys.emplace_back(Sym(path), Sym(col));
    }
    catalog.RegisterTable(path, std::move(stats));
  }
  size_t i = 0;
  for (auto _ : state) {
    const scope::ColumnStats& stats =
        catalog.LookupColumn(keys[i % keys.size()].first,
                             keys[i % keys.size()].second);
    benchmark::DoNotOptimize(stats);
    ++i;
  }
}
BENCHMARK(BM_CatalogLookupInterned);

void BM_StatsFingerprintInterned(benchmark::State& state) {
  // Registration recomputes the table's content hash over interned ids;
  // StatsFingerprint itself is O(1) (an incrementally maintained sum).
  scope::TableStats stats;
  stats.true_rows = 5e7;
  stats.est_rows = 6e7;
  for (int c = 0; c < 16; ++c) {
    std::string name = "c";
    name += std::to_string(c);
    stats.columns[name] = {1e5, 1.2e5};
  }
  scope::Catalog catalog;
  for (auto _ : state) {
    catalog.RegisterTable("fact", stats);
    benchmark::DoNotOptimize(catalog.StatsFingerprint());
  }
}
BENCHMARK(BM_StatsFingerprintInterned);

void BM_OptimizeCrossConfigMemoHit(benchmark::State& state) {
  // A tiny L2 so rotating configs always miss the compilation cache and land
  // on the front-end entry's cross-config memo instead: each flipped rule is
  // an unwired placeholder the optimizer never consults, so the memo's full
  // tier serves the stored output without an optimizer run.
  cache::CompileCacheOptions cache_options;
  cache_options.compilation_capacity = 16;
  engine::ScopeEngine engine({}, {}, cache_options, {},
                             opt::CrossConfigMemoOptions{.enabled = true});
  std::vector<opt::RuleConfig> configs;
  for (int rule = 64; rule < 128; ++rule) {
    configs.push_back(opt::RuleConfig::DefaultWithFlip(rule));
  }
  // Warm: the one real optimizer run whose footprint covers every flip.
  benchmark::DoNotOptimize(engine.Compile(Jobs()[0], opt::RuleConfig::Default()));
  size_t i = 0;
  for (auto _ : state) {
    auto out = engine.Compile(Jobs()[0], configs[i % configs.size()]);
    benchmark::DoNotOptimize(out);
    ++i;
  }
  auto t = engine.optimizer_telemetry();
  state.counters["memo_hit_rate"] = t.memo_hit_rate();
}
BENCHMARK(BM_OptimizeCrossConfigMemoHit);

void BM_SpanComputation(benchmark::State& state) {
  engine::ScopeEngine engine;
  size_t i = 0;
  for (auto _ : state) {
    auto span = advisor::ComputeJobSpan(engine, Jobs()[i % Jobs().size()]);
    benchmark::DoNotOptimize(span);
    ++i;
  }
}
BENCHMARK(BM_SpanComputation);

// --- Two-level compilation cache (src/cache/): cached vs uncached pairs.
// The cached variants measure the steady state of the daily pipeline, where
// every stage after the first compiles each (job, config) from cache.

cache::CompileCacheOptions CacheOptions(bool enabled) {
  cache::CompileCacheOptions options;
  options.enabled = enabled;
  return options;
}

void BM_CompileFrontEndUncached(benchmark::State& state) {
  engine::ScopeEngine engine({}, {}, CacheOptions(false));
  size_t i = 0;
  for (auto _ : state) {
    auto plan = engine.CompileFrontEnd(Jobs()[i % Jobs().size()]);
    benchmark::DoNotOptimize(plan);
    ++i;
  }
}
BENCHMARK(BM_CompileFrontEndUncached);

void BM_CompileFrontEndCached(benchmark::State& state) {
  engine::ScopeEngine engine({}, {}, CacheOptions(true));
  size_t i = 0;
  for (auto _ : state) {
    auto plan = engine.CompileFrontEnd(Jobs()[i % Jobs().size()]);
    benchmark::DoNotOptimize(plan);
    ++i;
  }
}
BENCHMARK(BM_CompileFrontEndCached);

void BM_SpanFixpointUncached(benchmark::State& state) {
  engine::ScopeEngine engine({}, {}, CacheOptions(false));
  size_t i = 0;
  for (auto _ : state) {
    auto span = advisor::ComputeJobSpan(engine, Jobs()[i % Jobs().size()]);
    benchmark::DoNotOptimize(span);
    ++i;
  }
}
BENCHMARK(BM_SpanFixpointUncached);

void BM_SpanFixpointCached(benchmark::State& state) {
  engine::ScopeEngine engine({}, {}, CacheOptions(true));
  size_t i = 0;
  for (auto _ : state) {
    auto span = advisor::ComputeJobSpan(engine, Jobs()[i % Jobs().size()]);
    benchmark::DoNotOptimize(span);
    ++i;
  }
}
BENCHMARK(BM_SpanFixpointCached);

// --- Contextual bandit (src/bandit/): the canonical sparse representation.
// CombineFeatures builds one canonical (context x action) vector; TrainEpoch
// is the linear SGD sweep over shared combined vectors; Retrain measures the
// Personalizer's incremental retraining path (pending batch only, no
// history rescan, no feature deep-copies).

bandit::FeatureVector BenchContext() {
  bandit::JobContext ctx;
  ctx.span = BitVector256::FromPositions({41, 44, 50, 160, 203, 204});
  ctx.row_count = 1e8;
  ctx.est_cost = 1e4;
  return bandit::BuildContextFeatures(ctx);
}

void BM_CombineFeatures(benchmark::State& state) {
  bandit::FeatureVector shared = BenchContext();
  bandit::FeatureVector action = bandit::BuildActionFeatures(41, false);
  for (auto _ : state) {
    auto combined = bandit::CombineFeatures(shared, action);
    benchmark::DoNotOptimize(combined);
  }
}
BENCHMARK(BM_CombineFeatures);

void BM_CbTrainEpoch(benchmark::State& state) {
  bandit::FeatureVector shared = BenchContext();
  std::vector<bandit::LoggedExample> examples;
  for (int i = 0; i < 256; ++i) {
    bandit::FeatureVector action =
        bandit::BuildActionFeatures(41 + (i % 6), false);
    examples.push_back({bandit::CombineFeaturesShared(shared, action),
                        i % 2 == 0 ? 1.5 : 0.5, 1.0 / 7.0});
  }
  bandit::CbModel model;
  for (auto _ : state) {
    model.TrainEpoch(examples);
    benchmark::DoNotOptimize(model);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(examples.size()));
}
BENCHMARK(BM_CbTrainEpoch);

void BM_PersonalizerRetrain(benchmark::State& state) {
  bandit::PersonalizerService service(
      {.seed = 5, .retrain_interval = 1000000});
  bandit::FeatureVector context = BenchContext();
  std::vector<bandit::RankableAction> actions;
  for (int bit : {41, 44, 50, 160, 203, 204}) {
    actions.push_back({std::to_string(bit),
                       bandit::BuildActionFeatures(bit, false)});
  }
  uint64_t i = 0;
  const int kBatch = 256;
  for (auto _ : state) {
    // Feed one retrain batch off the clock; measure only the retrain.
    state.PauseTiming();
    auto combined = bandit::CombineActionSet(context, actions);
    for (int k = 0; k < kBatch; ++k) {
      bandit::RankRequest req;
      // Reserved build + move assign: sidesteps the GCC 12 -Wrestrict
      // false positive on the string grow path (see BM_PersonalizerRank).
      std::string event_id;
      event_id.reserve(24);
      event_id.push_back('r');
      event_id += std::to_string(i++);
      req.event_id = std::move(event_id);
      req.actions = actions;
      req.explore_uniform = true;
      req.precombined = combined;
      auto resp = service.Rank(req);
      service.Reward(resp->event_id, k % 2 == 0 ? 1.5 : 0.5).ok();
    }
    state.ResumeTiming();
    service.Retrain();
    benchmark::DoNotOptimize(service);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * kBatch);
}
BENCHMARK(BM_PersonalizerRetrain);

void BM_PersonalizerRank(benchmark::State& state) {
  bandit::PersonalizerService service({.seed = 3});
  bandit::JobContext ctx;
  ctx.span = BitVector256::FromPositions({41, 44, 50, 160, 203, 204});
  ctx.row_count = 1e8;
  ctx.est_cost = 1e4;
  bandit::FeatureVector shared = bandit::BuildContextFeatures(ctx);
  std::vector<bandit::RankableAction> actions;
  for (int bit : ctx.span.Positions()) {
    actions.push_back({std::to_string(bit),
                       bandit::BuildActionFeatures(bit, false)});
  }
  uint64_t i = 0;
  for (auto _ : state) {
    bandit::RankRequest req;
    // Reserved build + move assign: GCC 12's -Wrestrict false-positives on
    // the string grow path here (char* assign + append under ASan inlining,
    // operator+ at -O3), and the reserve keeps both codegens out of it.
    std::string event_id;
    event_id.reserve(24);
    event_id.push_back('e');
    event_id += std::to_string(i++);
    req.event_id = std::move(event_id);
    req.context = shared;
    req.actions = actions;
    auto resp = service.Rank(req);
    benchmark::DoNotOptimize(resp);
  }
}
BENCHMARK(BM_PersonalizerRank);

// BM_PersonalizerRank combines (and now canonicalizes) context x action
// inline per call — the cold path. The pipeline always ranks through the
// Recommender's per-job combined-feature cache instead; this variant
// measures that served path (one CombineActionSet amortized across the
// probes + acting arm of a job, here across the whole run).
void BM_PersonalizerRankPrecombined(benchmark::State& state) {
  bandit::PersonalizerService service({.seed = 3});
  bandit::FeatureVector shared = BenchContext();
  std::vector<bandit::RankableAction> actions;
  for (int bit : {41, 44, 50, 160, 203, 204}) {
    actions.push_back({std::to_string(bit),
                       bandit::BuildActionFeatures(bit, false)});
  }
  auto combined = bandit::CombineActionSet(shared, actions);
  uint64_t i = 0;
  for (auto _ : state) {
    bandit::RankRequest req;
    std::string event_id;
    event_id.reserve(24);
    event_id.push_back('e');
    event_id += std::to_string(i++);
    req.event_id = std::move(event_id);
    req.actions = actions;
    req.precombined = combined;
    auto resp = service.Rank(req);
    benchmark::DoNotOptimize(resp);
  }
}
BENCHMARK(BM_PersonalizerRankPrecombined);

// --- Vectorized data plane (src/common/kernels/): scalar-vs-AVX2 A/B on
// the dispatched SoA hot paths. The avx2=0/1 axis pins the kernel table via
// the test hook; outputs are byte-identical across the axis (asserted by
// kernels_test / exec_test / bandit_test), so only wall time moves. On a
// machine without AVX2 both legs measure the scalar table.

const kernels::KernelTable& TableForArg(int64_t arg) {
  if (arg == 0) return kernels::ScalarTable();
#if defined(__x86_64__) || defined(_M_X64)
  if (kernels::Avx2Compiled() && __builtin_cpu_supports("avx2")) {
    return kernels::Avx2Table();
  }
#endif
  return kernels::ScalarTable();
}

void BM_ExecuteRunsSoA(benchmark::State& state) {
  kernels::SetActiveTableForTest(&TableForArg(state.range(0)));
  engine::ScopeEngine engine;
  auto compiled = engine.Compile(Jobs()[0], opt::RuleConfig::Default());
  exec::ClusterSimulator sim;
  exec::ExecutionProfile profile =
      sim.Prepare(compiled->plan, Jobs()[0].catalog);
  constexpr int kRuns = 64;
  uint64_t seed = 0;
  for (auto _ : state) {
    auto runs = sim.ExecuteRuns(profile, seed, kRuns);
    benchmark::DoNotOptimize(runs);
    seed += kRuns;
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * kRuns);
  kernels::SetActiveTableForTest(nullptr);
}
BENCHMARK(BM_ExecuteRunsSoA)->ArgName("avx2")->Arg(0)->Arg(1);

void BM_ScoreBatch(benchmark::State& state) {
  kernels::SetActiveTableForTest(&TableForArg(state.range(0)));
  bandit::FeatureVector shared = BenchContext();
  std::vector<bandit::LoggedExample> examples;
  for (int i = 0; i < 256; ++i) {
    bandit::FeatureVector action =
        bandit::BuildActionFeatures(41 + (i % 6), false);
    examples.push_back({bandit::CombineFeaturesShared(shared, action),
                        i % 2 == 0 ? 1.5 : 0.5, 1.0 / 7.0});
  }
  bandit::CbModel model;
  model.TrainEpoch(examples);
  std::vector<std::shared_ptr<const bandit::SparseVector>> arms;
  for (int i = 0; i < 16; ++i) {
    arms.push_back(bandit::CombineFeaturesShared(
        shared, bandit::BuildActionFeatures(40 + i, i == 0)));
  }
  for (auto _ : state) {
    auto scores = model.ScoreBatch(arms);
    benchmark::DoNotOptimize(scores);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(arms.size()));
  kernels::SetActiveTableForTest(nullptr);
}
BENCHMARK(BM_ScoreBatch)->ArgName("avx2")->Arg(0)->Arg(1);

void BM_CombineArena(benchmark::State& state) {
  kernels::SetActiveTableForTest(&TableForArg(state.range(0)));
  // Twelve span bits put hundreds of entries in the shared vector, and the
  // quadratic (shared x action) cross pushes the raw entry count well past
  // the arena cutover — this measures the bump-arena build plus the
  // collect_nonzero_words sparse-emit scan, not the small-vector sort path.
  bandit::JobContext ctx;
  ctx.span = BitVector256::FromPositions(
      {3, 17, 41, 44, 50, 77, 101, 160, 203, 204, 211, 249});
  ctx.row_count = 1e8;
  ctx.est_cost = 1e4;
  bandit::FeatureVector shared = bandit::BuildContextFeatures(ctx);
  bandit::FeatureVector action = bandit::BuildActionFeatures(41, false);
  for (auto _ : state) {
    auto combined = bandit::CombineFeatures(shared, action);
    benchmark::DoNotOptimize(combined);
  }
  kernels::SetActiveTableForTest(nullptr);
}
BENCHMARK(BM_CombineArena)->ArgName("avx2")->Arg(0)->Arg(1);

void BM_KernelDot4(benchmark::State& state) {
  const kernels::KernelTable& table = TableForArg(state.range(0));
  constexpr size_t kColumns = 512;
  std::vector<double> rows(2 * kernels::kLanes * kColumns);
  for (size_t i = 0; i < rows.size(); ++i) {
    rows[i] = 0.25 * static_cast<double>(i % 17) - 2.0;
  }
  const double* v[kernels::kLanes];
  const double* w[kernels::kLanes];
  for (size_t j = 0; j < kernels::kLanes; ++j) {
    v[j] = rows.data() + j * kColumns;
    w[j] = rows.data() + (kernels::kLanes + j) * kColumns;
  }
  double acc[kernels::kLanes];
  for (auto _ : state) {
    for (double& a : acc) a = 0.0;
    table.dot4(v, w, kColumns, acc);
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kColumns * kernels::kLanes));
}
BENCHMARK(BM_KernelDot4)->ArgName("avx2")->Arg(0)->Arg(1);

void BM_KernelClampRange(benchmark::State& state) {
  const kernels::KernelTable& table = TableForArg(state.range(0));
  // In-place clamp over an NdvMap-sized column; values already inside the
  // range stay put, so re-clamping per iteration measures steady state.
  std::vector<double> ndv(4096);
  for (size_t i = 0; i < ndv.size(); ++i) {
    ndv[i] = static_cast<double>((i * 37) % 4000);
  }
  for (auto _ : state) {
    table.clamp_range(ndv.data(), ndv.size(), 1.0, 2000.0);
    benchmark::DoNotOptimize(ndv.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(ndv.size()));
}
BENCHMARK(BM_KernelClampRange)->ArgName("avx2")->Arg(0)->Arg(1);

// --- Parallel runtime: threads=N axes. On a single hardware thread these
// show the runtime's overhead ceiling; on multi-core they show the fan-out
// speedup of the two hottest service paths. Results are byte-identical
// across the axis (asserted by runtime_test), so only wall time moves.

void BM_ParallelFlightBatch(benchmark::State& state) {
  runtime::ParallelRuntime rt(
      {.num_threads = static_cast<int>(state.range(0))});
  engine::ScopeEngine engine;
  flight::FlightingConfig config;
  config.queue_capacity = 64;
  config.total_budget_machine_hours = 1e9;
  flight::FlightingService service(&engine, config, &rt);
  uint64_t salt = 0;
  for (auto _ : state) {
    service.ResetBudget();
    std::vector<flight::FlightRequest> requests;
    requests.reserve(Jobs().size());
    for (size_t i = 0; i < Jobs().size(); ++i) {
      flight::FlightRequest r;
      r.job = Jobs()[i];
      r.candidate = opt::RuleConfig::DefaultWithFlip(
          opt::rules::kEagerAggregationLeft);
      r.est_cost_delta = -0.01 * static_cast<double>(i % 5);
      requests.push_back(std::move(r));
    }
    auto results = service.FlightBatch(std::move(requests), salt++);
    benchmark::DoNotOptimize(results);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(Jobs().size()));
}
BENCHMARK(BM_ParallelFlightBatch)
    ->ArgName("threads")
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void BM_ParallelFeatureGen(benchmark::State& state) {
  runtime::ParallelRuntime rt(
      {.num_threads = static_cast<int>(state.range(0))});
  engine::ScopeEngine engine;
  // One day's view, built once: the benchmark measures the span-computation
  // fan-out (the pipeline's dominant recompilation loop), not execution.
  static const telemetry::WorkloadView* view = [] {
    auto* v = new telemetry::WorkloadView();
    engine::ScopeEngine build_engine;
    for (const auto& job : Jobs()) {
      auto run = build_engine.Run(job, opt::RuleConfig::Default(), 0);
      if (!run.ok()) continue;
      v->rows.push_back(
          telemetry::MakeViewRow(job, *run->compilation, run->metrics));
    }
    return v;
  }();
  for (auto _ : state) {
    auto features = advisor::GenerateFeatures(engine, *view, nullptr, &rt);
    benchmark::DoNotOptimize(features);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(view->rows.size()));
}
BENCHMARK(BM_ParallelFeatureGen)
    ->ArgName("threads")
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void BM_BitVectorOps(benchmark::State& state) {
  BitVector256 a = BitVector256::FromPositions({1, 50, 100, 200, 255});
  BitVector256 b = BitVector256::FirstN(128);
  for (auto _ : state) {
    auto c = (a | b).AndNot(a ^ b);
    benchmark::DoNotOptimize(c.Count());
    benchmark::DoNotOptimize(c.Positions());
  }
}
BENCHMARK(BM_BitVectorOps);

}  // namespace

BENCHMARK_MAIN();

// Microbenchmarks (google-benchmark) for the hot paths of the pipeline:
// compilation/optimization throughput, span computation, bandit ranking,
// and the bitvector primitives everything rests on.
#include <benchmark/benchmark.h>

#include "bandit/personalizer.h"
#include "common/bitvector.h"
#include "core/span.h"
#include "engine/engine.h"
#include "workload/workload.h"

namespace {

using namespace qo;  // NOLINT

const workload::WorkloadDriver& Driver() {
  static const auto* driver = new workload::WorkloadDriver(
      {.num_templates = 20, .jobs_per_day = 30, .seed = 99});
  return *driver;
}

const std::vector<workload::JobInstance>& Jobs() {
  static const auto* jobs =
      new std::vector<workload::JobInstance>(Driver().DayJobs(0));
  return *jobs;
}

void BM_CompileDefaultConfig(benchmark::State& state) {
  engine::ScopeEngine engine;
  size_t i = 0;
  for (auto _ : state) {
    auto out =
        engine.Compile(Jobs()[i % Jobs().size()], opt::RuleConfig::Default());
    benchmark::DoNotOptimize(out);
    ++i;
  }
}
BENCHMARK(BM_CompileDefaultConfig);

void BM_CompileWithFlip(benchmark::State& state) {
  engine::ScopeEngine engine;
  auto config =
      opt::RuleConfig::DefaultWithFlip(opt::rules::kEagerAggregationLeft);
  size_t i = 0;
  for (auto _ : state) {
    auto out = engine.Compile(Jobs()[i % Jobs().size()], config);
    benchmark::DoNotOptimize(out);
    ++i;
  }
}
BENCHMARK(BM_CompileWithFlip);

void BM_ExecuteSimulation(benchmark::State& state) {
  engine::ScopeEngine engine;
  auto compiled = engine.Compile(Jobs()[0], opt::RuleConfig::Default());
  uint64_t salt = 0;
  for (auto _ : state) {
    auto m = engine.Execute(Jobs()[0], compiled->plan, salt++);
    benchmark::DoNotOptimize(m);
  }
}
BENCHMARK(BM_ExecuteSimulation);

void BM_SpanComputation(benchmark::State& state) {
  engine::ScopeEngine engine;
  size_t i = 0;
  for (auto _ : state) {
    auto span = advisor::ComputeJobSpan(engine, Jobs()[i % Jobs().size()]);
    benchmark::DoNotOptimize(span);
    ++i;
  }
}
BENCHMARK(BM_SpanComputation);

void BM_PersonalizerRank(benchmark::State& state) {
  bandit::PersonalizerService service({.seed = 3});
  bandit::JobContext ctx;
  ctx.span = BitVector256::FromPositions({41, 44, 50, 160, 203, 204});
  ctx.row_count = 1e8;
  ctx.est_cost = 1e4;
  bandit::FeatureVector shared = bandit::BuildContextFeatures(ctx);
  std::vector<bandit::RankableAction> actions;
  for (int bit : ctx.span.Positions()) {
    actions.push_back({std::to_string(bit),
                       bandit::BuildActionFeatures(bit, false)});
  }
  uint64_t i = 0;
  for (auto _ : state) {
    bandit::RankRequest req;
    req.event_id = "e";
    req.event_id += std::to_string(i++);
    req.context = shared;
    req.actions = actions;
    auto resp = service.Rank(req);
    benchmark::DoNotOptimize(resp);
  }
}
BENCHMARK(BM_PersonalizerRank);

void BM_BitVectorOps(benchmark::State& state) {
  BitVector256 a = BitVector256::FromPositions({1, 50, 100, 200, 255});
  BitVector256 b = BitVector256::FirstN(128);
  for (auto _ : state) {
    auto c = (a | b).AndNot(a ^ b);
    benchmark::DoNotOptimize(c.Count());
    benchmark::DoNotOptimize(c.Positions());
  }
}
BENCHMARK(BM_BitVectorOps);

}  // namespace

BENCHMARK_MAIN();

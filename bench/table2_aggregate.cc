// Table 2: aggregate pre-production impact of QO-Advisor on hint-matched
// jobs. Paper: PNhours -14.3%, latency -8.9%, vertices -52.8% over 70 jobs.
#include <iostream>

#include "common/table_printer.h"
#include "experiments/experiments.h"

int main() {
  qo::experiments::ExperimentEnv env;
  auto result = qo::experiments::RunAggregateImpact(env);
  std::cout << "== Table 2: aggregate pre-production results ==\n";
  std::cout << "active hints: " << result.active_hints
            << ", matched jobs: " << result.matched_jobs << "\n";
  qo::TablePrinter table({"Metric", "%Reduction (this repro)", "Paper"});
  table.AddRow({"PNhours", qo::TablePrinter::Pct(result.pn_hours_reduction),
                "-14.3%"});
  table.AddRow({"Latency", qo::TablePrinter::Pct(result.latency_reduction),
                "-8.9%"});
  table.AddRow({"Vertices", qo::TablePrinter::Pct(result.vertices_reduction),
                "-52.8%"});
  table.Print(std::cout);
  return 0;
}

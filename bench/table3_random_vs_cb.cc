// Table 3: uniform-random vs contextual-bandit rule flips. Paper: CB
// produces ~3x more lower-cost jobs, ~2x fewer higher-cost jobs, fewer
// recompile failures, and >100x lower total estimated cost.
#include <cstdio>
#include <iostream>

#include "common/table_printer.h"
#include "experiments/experiments.h"

int main() {
  qo::experiments::ExperimentEnv env;
  auto result = qo::experiments::RunRandomVsCb(env);
  std::cout << "== Table 3: random vs contextual-bandit rule flips ==\n";
  std::printf("jobs with non-empty span: %zu of %zu (%.0f%%; paper: ~66%%)\n",
              result.jobs_with_span, result.jobs_total,
              100.0 * static_cast<double>(result.jobs_with_span) /
                  static_cast<double>(result.jobs_total));

  auto pct = [&](size_t v, const qo::experiments::FlipOutcomeCounts& c) {
    return qo::TablePrinter::Pct(
        static_cast<double>(v) / static_cast<double>(c.total()), 1);
  };
  qo::TablePrinter table({"Number of jobs", "Random", "Random %", "CB",
                          "CB %", "Paper (Random% / CB%)"});
  const auto& r = result.random;
  const auto& c = result.cb;
  table.AddRow({"Lower cost", std::to_string(r.lower_cost),
                pct(r.lower_cost, r), std::to_string(c.lower_cost),
                pct(c.lower_cost, c), "10.6% / 34.5%"});
  table.AddRow({"Equal cost", std::to_string(r.equal_cost),
                pct(r.equal_cost, r), std::to_string(c.equal_cost),
                pct(c.equal_cost, c), "35.4% / 32.1%"});
  table.AddRow({"Higher cost", std::to_string(r.higher_cost),
                pct(r.higher_cost, r), std::to_string(c.higher_cost),
                pct(c.higher_cost, c), "36.0% / 19.5%"});
  table.AddRow({"Recompile failures", std::to_string(r.recompile_failures),
                pct(r.recompile_failures, r),
                std::to_string(c.recompile_failures),
                pct(c.recompile_failures, c), "18.0% / 13.9%"});
  table.Print(std::cout);
  std::printf("total est cost: default=%.3e random=%.3e cb=%.3e\n",
              result.default_total_est_cost, result.random.total_est_cost,
              result.cb.total_est_cost);
  std::printf("random/cb cost ratio: %.1fx  (paper: >100x)\n",
              result.random.total_est_cost /
                  std::max(1e-9, result.cb.total_est_cost));
  return 0;
}

// Figure 5: A/A PNhours variance. Paper: PNhours is markedly more stable
// than latency — fewer than 50% of jobs exceed the 5% variance line.
#include <cstdio>

#include "bench_util.h"
#include "experiments/experiments.h"

int main() {
  qo::experiments::ExperimentEnv env;
  auto result =
      qo::experiments::RunAAVariance(env, qo::experiments::Metric::kPnHours);
  std::printf("== Figure 5: A/A variance of PNhours (10 runs/job) ==\n");
  qo::benchutil::PrintScatterDeciles("normalized execution time",
                                     "PNhours CV", result.time_vs_cv);
  std::printf("jobs above 5%% variance: %.1f%%  (paper: <50%%)\n",
              100.0 * result.fraction_above_5pct);
  return 0;
}

// Sustained-load generator for the always-on advisor service.
//
//   ./build/bench/service_load [tenants] [ops_per_tenant]
//
// Drives `tenants` independent per-tenant request streams — each a seeded,
// fully deterministic mix of rank -> reward, hint-aware compile, periodic
// hint uploads and synchronous retrain/publish cycles — through one
// AdvisorService, fanned out across the parallel runtime (QO_THREADS).
//
// Two deliverables per run:
//
//  1. Throughput + latency: sustained qps over the timed run plus p50/p99
//     of the service's own registry histograms (service.rank_ns /
//     service.compile_ns / service.request_ns). The figures also land in
//     gauges (service.load.qps, service.load.wall_ms) and, when
//     QO_OBS_REPORT is set, one JSONL run-report line for CI to parse.
//
//  2. Determinism: every tenant stream writes a transcript of
//     scheduling-independent response fields (chosen actions, propensities,
//     costs, hint/sis versions, snapshot sequences). The harness replays
//     the identical streams against fresh services at 1 thread and at 4
//     threads and asserts all transcripts byte-identical — the service-layer
//     extension of the runtime's determinism contract. Exit 1 on mismatch.
//
// Snapshot timing is pinned by calling TrainAndPublish synchronously inside
// each stream (the background trainer stays off), so snapshot sequences are
// part of the deterministic transcript.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/report.h"
#include "optimizer/rules.h"
#include "runtime/runtime.h"
#include "service/advisor_service.h"
#include "workload/workload.h"

namespace {

using namespace qo;  // NOLINT

/// Per-tenant deterministic request stream. Appends one line per operation
/// to the returned transcript; every field is scheduling-independent.
std::string RunTenantStream(service::AdvisorService& advisor, int tenant_idx,
                            int ops) {
  const std::string tenant = "tenant_" + std::to_string(tenant_idx);
  auto session = advisor.Session(tenant);
  if (!session.ok()) {
    return "OPEN-FAILED: " + session.status().ToString() + "\n";
  }

  // A small recurring workload per tenant; the pool cycles so compiles mix
  // cache hits with fresh template/config pairs.
  workload::WorkloadDriver driver({.num_templates = 10,
                                   .jobs_per_day = 24,
                                   .recurring_fraction = 0.8,
                                   .template_skew = 0.5,
                                   .seed = 1000u + static_cast<uint64_t>(
                                                       tenant_idx)});
  std::vector<workload::JobInstance> pool;
  for (int day = 0; day < 4; ++day) {
    for (auto& job : driver.DayJobs(day)) pool.push_back(std::move(job));
  }

  const int kActionRules[] = {opt::rules::kBroadcastJoinAggressive,
                              opt::rules::kEagerAggregationLeft,
                              opt::rules::kFilterPushdownIntoJoinLeft,
                              opt::rules::kFilterIntoScan};
  Rng reward_rng(77u + static_cast<uint64_t>(tenant_idx));

  std::string transcript;
  transcript.reserve(static_cast<size_t>(ops) * 96);
  char line[256];
  for (int i = 0; i < ops; ++i) {
    const workload::JobInstance& job =
        pool[static_cast<size_t>(i) % pool.size()];

    // Hint-steered compile (the SCOPE compile path of Fig. 1).
    auto compiled = session->Compile(job);
    if (!compiled.ok()) {
      transcript += "compile-failed: " + compiled.status().ToString() + "\n";
      continue;
    }
    std::snprintf(line, sizeof(line), "c %d %.6f %d %d %d\n", i,
                  compiled->compilation->est_cost,
                  compiled->hint_applied ? 1 : 0, compiled->rule_id,
                  compiled->sis_version);
    transcript += line;

    // Rank a rule flip for the job's template, then close the loop with a
    // deterministic reward through the typed event id.
    service::RankRequest rank;
    rank.tenant = tenant;
    rank.event_id = tenant + "-e" + std::to_string(i);
    rank.context.AddNamed("tpl:" + job.template_name, 1.0);
    rank.context.AddNamed("day:" + std::to_string(i / 24), 1.0);
    for (int rule : kActionRules) {
      bandit::RankableAction action;
      action.action_id = "flip_" + std::to_string(rule);
      action.features.AddNamed("rule:" + std::to_string(rule), 1.0);
      rank.actions.push_back(std::move(action));
    }
    auto ranked = advisor.Rank(rank);
    if (!ranked.ok()) {
      transcript += "rank-failed: " + ranked.status().ToString() + "\n";
      continue;
    }
    std::snprintf(line, sizeof(line), "r %d %zu %s %.4f %llu\n", i,
                  ranked->chosen_index, ranked->chosen_action_id.c_str(),
                  ranked->probability,
                  static_cast<unsigned long long>(ranked->snapshot_sequence));
    transcript += line;

    auto rewarded = session->Reward(ranked->event, reward_rng.Uniform());
    if (!rewarded.ok()) {
      transcript += "reward-failed: " + rewarded.status().ToString() + "\n";
      continue;
    }
    std::snprintf(line, sizeof(line), "w %d %zu\n", i,
                  rewarded->rewarded_events);
    transcript += line;

    // Periodic hint publication: flip one action rule for this template.
    if (i % 64 == 63) {
      sis::HintFile hints;
      hints.day = i / 64;
      hints.entries.push_back(
          {.template_name = job.template_name,
           .rule_id = kActionRules[(i / 64) % 4],
           .enable = true});
      auto upload = session->UploadHints(hints);
      if (upload.ok()) {
        std::snprintf(line, sizeof(line), "u %d %d %zu %llu\n", i,
                      upload->version, upload->active_hints,
                      static_cast<unsigned long long>(
                          upload->snapshot_sequence));
      } else {
        // Re-flipping an already-hinted template can be a valid rejection
        // (no-op hint); the *status* is still deterministic, so log it.
        std::snprintf(line, sizeof(line), "u %d rejected\n", i);
      }
      transcript += line;
    }

    // Synchronous retrain/publish pins snapshot timing into the stream.
    if (i % 32 == 31) {
      bool published = session->TrainAndPublish();
      std::snprintf(line, sizeof(line), "t %d %d\n", i, published ? 1 : 0);
      transcript += line;
    }
  }
  return transcript;
}

/// Opens `tenants` tenants on a fresh service and runs every stream through
/// `runtime`, one work item per tenant (per-tenant serialization by
/// construction; cross-tenant parallelism up to the pool size).
std::vector<std::string> RunAllStreams(service::AdvisorService& advisor,
                                       runtime::ParallelRuntime& runtime,
                                       int tenants, int ops) {
  for (int t = 0; t < tenants; ++t) {
    auto opened = advisor.OpenTenant("tenant_" + std::to_string(t));
    if (!opened.ok()) {
      std::fprintf(stderr, "open tenant %d failed: %s\n", t,
                   opened.status().ToString().c_str());
      std::exit(1);
    }
  }
  return runtime.TransformOrdered<std::string>(
      static_cast<size_t>(tenants),
      /*shard_of=*/[](size_t i) { return static_cast<uint64_t>(i); },
      /*priority_of=*/[](size_t i) { return static_cast<double>(i); },
      /*work=*/
      [&advisor, ops](size_t i) {
        return RunTenantStream(advisor, static_cast<int>(i), ops);
      });
}

void PrintQuantiles(const obs::MetricsSnapshot& snap, const char* name) {
  const obs::HistogramSnapshot* h = snap.FindHistogram(name);
  if (h == nullptr || h->total == 0) {
    std::printf("  %-22s (empty)\n", name);
    return;
  }
  std::printf("  %-22s count=%llu p50=%lluns p99=%lluns max=%lluns\n", name,
              static_cast<unsigned long long>(h->total),
              static_cast<unsigned long long>(h->Quantile(0.50)),
              static_cast<unsigned long long>(h->Quantile(0.99)),
              static_cast<unsigned long long>(h->MaxValue()));
}

}  // namespace

int main(int argc, char** argv) {
  const int tenants = argc > 1 ? std::atoi(argv[1]) : 4;
  const int ops = argc > 2 ? std::atoi(argv[2]) : 400;
  if (tenants <= 0 || ops <= 0) {
    std::fprintf(stderr, "usage: %s [tenants>0] [ops_per_tenant>0]\n",
                 argv[0]);
    return 2;
  }

  // One env snapshot for the whole process. The background trainer is
  // forced off: the bench pins retrain points inside the streams so
  // transcripts stay deterministic.
  service::AdvisorOptions options = service::AdvisorOptions::FromEnv();
  options.retrain_period_ms = 0;

  // --- Timed run at the env-configured thread count. -----------------------
  std::printf("service_load: %d tenants x %d ops, %d thread(s)\n", tenants,
              ops, options.runtime.num_threads);
  runtime::ParallelRuntime timed_runtime(options.runtime);
  std::vector<std::string> timed_transcripts;
  uint64_t wall_ns = 0;
  {
    service::AdvisorService advisor(options);
    const uint64_t start = obs::MonotonicNowNs();
    timed_transcripts = RunAllStreams(advisor, timed_runtime, tenants, ops);
    wall_ns = obs::MonotonicNowNs() - start;
  }

  // Each op issues one compile + one rank + one reward request.
  const double total_requests = 3.0 * tenants * ops;
  const double wall_sec = static_cast<double>(wall_ns) * 1e-9;
  const double qps = wall_sec > 0 ? total_requests / wall_sec : 0.0;
  std::printf("  wall %.3fs, %.0f requests, %.0f qps sustained\n", wall_sec,
              total_requests, qps);

  obs::MetricsSnapshot snap = obs::Registry::Get().Snapshot();
  PrintQuantiles(snap, "service.rank_ns");
  PrintQuantiles(snap, "service.compile_ns");
  PrintQuantiles(snap, "service.request_ns");

  if (obs::MetricsEnabled()) {
    obs::Registry::Get().gauge("service.load.qps").Set(qps);
    obs::Registry::Get().gauge("service.load.wall_ms").Set(wall_sec * 1e3);
    obs::Registry::Get()
        .gauge("service.load.requests")
        .Set(total_requests);
    if (auto writer = obs::RunReportWriter::FromEnv()) {
      writer->Append(obs::RunReportJsonLine(
          obs::ObsLabelFromEnv("service_load"), /*day=*/-1,
          obs::Registry::Get().Snapshot()));
      std::printf("  run report appended to %s\n", writer->path().c_str());
    }
  }

  // --- Determinism: identical streams at 1 vs 4 threads. -------------------
  auto replay = [&](int num_threads) {
    service::AdvisorOptions replay_options = options;
    replay_options.runtime.num_threads = num_threads;
    runtime::ParallelRuntime rt(replay_options.runtime);
    service::AdvisorService advisor(replay_options);
    return RunAllStreams(advisor, rt, tenants, ops);
  };
  std::vector<std::string> serial = replay(1);
  std::vector<std::string> parallel = replay(4);

  int mismatches = 0;
  for (int t = 0; t < tenants; ++t) {
    const std::string& want = serial[static_cast<size_t>(t)];
    if (parallel[static_cast<size_t>(t)] != want) {
      std::printf("  tenant %d: 1-thread vs 4-thread transcripts DIFFER\n",
                  t);
      ++mismatches;
    }
    if (timed_transcripts[static_cast<size_t>(t)] != want) {
      std::printf("  tenant %d: timed-run transcript DIFFERS from serial\n",
                  t);
      ++mismatches;
    }
  }
  if (mismatches > 0) {
    std::printf("determinism: FAILED (%d mismatching transcripts)\n",
                mismatches);
    return 1;
  }
  std::printf(
      "determinism: OK — %d tenant streams byte-identical at 1, 4 and %d "
      "thread(s)\n",
      tenants, options.runtime.num_threads);
  return 0;
}

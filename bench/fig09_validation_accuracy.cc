// Figure 9: predicted vs actual PNhours delta for the validation model,
// trained on two weeks of flighting data and tested on a held-out day.
// Paper: of the jobs predicted below -0.1, 85% land below -0.1 and 91%
// below 0.
#include <cstdio>

#include "bench_util.h"
#include "experiments/experiments.h"

int main() {
  qo::experiments::ExperimentEnv env;
  auto result = qo::experiments::RunValidationAccuracy(env);
  std::printf("== Figure 9: validation model accuracy ==\n");
  qo::benchutil::PrintScatterDeciles("predicted PNhours delta",
                                     "actual PNhours delta",
                                     result.predicted_vs_actual);
  std::printf("test jobs: %zu, accepted (predicted < -0.1): %zu\n",
              result.test_jobs, result.accepted);
  std::printf("accepted with actual < -0.1: %.1f%%  (paper: 85%%)\n",
              100.0 * result.frac_actual_below_threshold);
  std::printf("accepted with actual < 0:    %.1f%%  (paper: 91%%)\n",
              100.0 * result.frac_actual_below_zero);
  std::printf("temporal-generalization r2 on the held-out day: %.3f\n",
              result.model_r2);
  return 0;
}

// Figure 2: recurring job stability — latency improvements found in week0
// cannot always be repeated in week1. Paper: more than 40% of week0-improving
// jobs regress when re-run one week apart.
#include <cstdio>

#include "bench_util.h"
#include "experiments/experiments.h"

int main() {
  qo::experiments::ExperimentEnv env;
  auto result = qo::experiments::RunRecurringStability(
      env, qo::experiments::Metric::kLatency);
  std::printf("== Figure 2: recurring job stability (latency) ==\n");
  qo::benchutil::PrintScatterDeciles("week0 latency delta",
                                     "week1 latency delta",
                                     result.week0_week1);
  std::printf(
      "week0-improving jobs that regress in week1: %.1f%%  (paper: >40%%)\n",
      100.0 * result.regress_fraction);
  return 0;
}

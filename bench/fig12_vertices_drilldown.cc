// Figure 12: per-job vertices delta for the hint-matched jobs, sorted.
// Paper: only two jobs regress (~+10%); best improves by more than 60%.
#include <cstdio>

#include "bench_util.h"
#include "experiments/experiments.h"

int main() {
  qo::experiments::ExperimentEnv env;
  auto result = qo::experiments::RunAggregateImpact(env);
  std::printf("== Figure 12: vertices delta drill-down ==\n");
  qo::benchutil::PrintDeltaSeries("vertices", result.vertices_deltas);
  std::printf("(paper: worst ~+10%% on two jobs, best better than -60%%)\n");
  return 0;
}

// Sec. 5.2 ablation: disabling the estimated-cost filters (random flips,
// no pruning of cost-regressing plans) floods the flighting service. Paper:
// without the filters the pipeline could not finish flighting in 3 days.
#include <cstdio>

#include "experiments/experiments.h"

int main() {
  qo::experiments::ExperimentEnv env;
  auto result = qo::experiments::RunCostFilterAblation(env);
  std::printf("== Ablation: flighting without estimated-cost filters ==\n");
  std::printf("%-32s %12s %12s\n", "", "with filter", "no filter");
  std::printf("%-32s %12zu %12zu\n", "flight requests",
              result.flights_requested_with_filter,
              result.flights_requested_without_filter);
  std::printf("%-32s %12.1f %12.1f\n", "machine-hours consumed",
              result.budget_hours_with_filter,
              result.budget_hours_without_filter);
  std::printf("%-32s %12zu %12zu\n", "flights not finished (timeout)",
              result.timeouts_with_filter, result.timeouts_without_filter);
  std::printf("(paper: without cost filters, flighting that normally takes "
              "half a day did not finish in 3 days)\n");
  return 0;
}

// Sec. 8 future work: single rule flips limit how many plans can be
// improved. This ablation compares the estimated-cost improvements of the
// deployed 1-flip policy against greedy multi-flip episodes (horizon 2/3) —
// the short-horizon episodic approach the paper proposes to explore next.
#include <cstdio>

#include "common/stats.h"
#include "core/multi_flip.h"
#include "core/span.h"
#include "experiments/experiments.h"

int main() {
  using namespace qo;  // NOLINT
  experiments::ExperimentEnv env;
  struct Arm {
    int horizon = 0;
    size_t improved = 0;
    std::vector<double> gains = {};  // est-cost reduction fraction
  };
  Arm arms[] = {{1}, {2}, {3}};
  size_t jobs = 0;
  for (const auto& job : env.driver().DayJobs(0)) {
    auto span = advisor::ComputeJobSpan(env.engine(), job);
    if (!span.ok() || span->span.None()) continue;
    ++jobs;
    for (Arm& arm : arms) {
      auto result = advisor::GreedyMultiFlip(
          env.engine(), job, span->span, arm.horizon,
          /*min_relative_gain=*/1e-3, span->default_compilation);
      if (!result.ok()) continue;
      if (!result->flips.empty()) {
        ++arm.improved;
        arm.gains.push_back(1.0 -
                            result->est_cost_final / result->est_cost_default);
      }
    }
  }
  std::printf("== Future work ablation: single vs greedy multi flips ==\n");
  std::printf("jobs with non-empty span: %zu\n\n", jobs);
  std::printf("%8s %14s %18s %16s\n", "horizon", "jobs improved",
              "mean est-cost gain", "max est-cost gain");
  for (const Arm& arm : arms) {
    double max_gain = 0;
    for (double g : arm.gains) max_gain = std::max(max_gain, g);
    std::printf("%8d %14zu %17.1f%% %15.1f%%\n", arm.horizon, arm.improved,
                100.0 * Mean(arm.gains), 100.0 * max_gain);
  }
  std::printf("\n(paper Sec. 8: \"QO-Advisor currently suggests only one "
              "single rule flip per job ... it limits how many plans can be "
              "improved\")\n");
  return 0;
}

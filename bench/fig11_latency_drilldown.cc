// Figure 11: per-job latency delta for the hint-matched jobs, sorted.
// Paper: ~80% improve (best -90%); worst regression about +45% — larger than
// PNhours because the pipeline tunes for PNhours.
#include <cstdio>

#include "bench_util.h"
#include "experiments/experiments.h"

int main() {
  qo::experiments::ExperimentEnv env;
  auto result = qo::experiments::RunAggregateImpact(env);
  std::printf("== Figure 11: latency delta drill-down ==\n");
  qo::benchutil::PrintDeltaSeries("latency", result.latency_deltas);
  std::printf("(paper: ~80%% improve, best ~-90%%, worst ~+45%%)\n");
  return 0;
}
